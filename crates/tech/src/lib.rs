//! Technology (PDK) modelling for double-side clock tree synthesis.
//!
//! The paper evaluates on the ASAP7 predictive PDK with back-side metal
//! layers (`BM1`–`BM3`) and nano-TSV parameters taken from Chen et al.
//! (IEDM 2021). This crate captures everything the synthesis and timing
//! engines need to know about the process:
//!
//! * [`Layer`] — per-unit wire resistance/capacitance (Table I of the paper).
//! * [`BufferModel`] — the clock buffer (`BUFx4_ASAP7_75t_R`-like): input
//!   capacitance, linearised drive model, and a synthesized [`NldmTable`]
//!   for table-lookup evaluation.
//! * [`NtsvModel`] — the nano-TSV resistance/capacitance and footprint.
//! * [`Technology`] — the bundle consumed by every downstream crate, with
//!   the [`Technology::asap7`] preset reproducing the paper's setup and a
//!   [`TechnologyBuilder`] for custom processes.
//!
//! # Units
//!
//! Length **nm**, resistance **kΩ**, capacitance **fF**, time **ps**
//! (kΩ·fF = ps). Layer data is entered per-µm (as in Table I) and converted
//! internally.
//!
//! # Example
//!
//! ```
//! use dscts_tech::{Side, Technology};
//!
//! let tech = Technology::asap7();
//! // Back-side metal is ~63x less resistive than front-side M3:
//! let front = tech.rc(Side::Front);
//! let back = tech.rc(Side::Back);
//! assert!(front.res_per_nm / back.res_per_nm > 60.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod corner;
mod layer;
mod nldm;
mod ntsv;

pub use buffer::BufferModel;
pub use corner::{Corner, CornerSet, DerateFactors, WireDerate};
pub use layer::{Layer, WireRc};
pub use nldm::{NldmError, NldmTable};
pub use ntsv::NtsvModel;

use std::fmt;

/// Which side of the die a wire (or pin) lives on.
///
/// Standard cells — and therefore all buffer pins and clock sink pins — are
/// on the [`Side::Front`]; back-side metal is reachable only through nTSVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// Front side (conventional BEOL metal stack).
    Front,
    /// Back side (backside metal stack, reached through nTSVs).
    Back,
}

impl Side {
    /// The opposite side.
    pub fn flipped(self) -> Side {
        match self {
            Side::Front => Side::Back,
            Side::Back => Side::Front,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Front => write!(f, "F"),
            Side::Back => write!(f, "B"),
        }
    }
}

/// Error raised when assembling an inconsistent [`Technology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechError {
    /// A layer name referenced by the builder does not exist.
    UnknownLayer(String),
    /// No layers were registered.
    NoLayers,
    /// A numeric parameter was non-positive where positivity is required.
    NonPositive(&'static str),
    /// A corner derate factor was non-positive, NaN or infinite.
    BadDerate(&'static str),
    /// A corner set was built from an empty corner list.
    NoCorners,
    /// A corner set's nominal index was out of range.
    BadNominalCorner,
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownLayer(n) => write!(f, "unknown layer name `{n}`"),
            TechError::NoLayers => write!(f, "technology has no layers"),
            TechError::NonPositive(what) => write!(f, "parameter `{what}` must be positive"),
            TechError::BadDerate(what) => {
                write!(f, "derate factor `{what}` must be positive and finite")
            }
            TechError::NoCorners => write!(f, "corner set has no corners"),
            TechError::BadNominalCorner => write!(f, "nominal corner index out of range"),
        }
    }
}

impl std::error::Error for TechError {}

/// A complete process description for double-side CTS.
///
/// Obtain one from [`Technology::asap7`] (the paper's setup) or via
/// [`Technology::builder`].
#[derive(Debug, Clone)]
pub struct Technology {
    name: String,
    layers: Vec<Layer>,
    front_idx: usize,
    back_idx: usize,
    buffer: BufferModel,
    ntsv: NtsvModel,
    sink_cap_ff: f64,
    max_load_ff: f64,
    row_height_nm: i64,
}

impl Technology {
    /// Starts building a custom technology.
    pub fn builder() -> TechnologyBuilder {
        TechnologyBuilder::default()
    }

    /// The ASAP7-like technology used throughout the paper's evaluation:
    /// Table I layer RC values, M3 as the front-side clock layer, BM1–BM3
    /// as the back-side layer, nTSV R/C of 0.020 kΩ / 0.004 fF, and a
    /// `BUFx4_ASAP7_75t_R`-like clock buffer.
    pub fn asap7() -> Technology {
        let layers = Layer::asap7_table();
        Technology {
            name: "asap7-backside".to_owned(),
            front_idx: 2, // M3, following OpenROAD's convention
            back_idx: 9,  // BM1~BM3 (single merged entry, as in Table I)
            layers,
            buffer: BufferModel::asap7_bufx4(),
            ntsv: NtsvModel::iedm21(),
            sink_cap_ff: 1.1,
            max_load_ff: 80.0,
            row_height_nm: 270,
        }
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All registered layers (front stack then back stack).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The layer used for front-side clock routing.
    pub fn front_layer(&self) -> &Layer {
        &self.layers[self.front_idx]
    }

    /// The layer used for back-side clock routing.
    pub fn back_layer(&self) -> &Layer {
        &self.layers[self.back_idx]
    }

    /// Per-nm wire RC for the routing layer of `side`.
    pub fn rc(&self, side: Side) -> WireRc {
        match side {
            Side::Front => self.front_layer().rc(),
            Side::Back => self.back_layer().rc(),
        }
    }

    /// The clock buffer model.
    pub fn buffer(&self) -> &BufferModel {
        &self.buffer
    }

    /// The nano-TSV model.
    pub fn ntsv(&self) -> &NtsvModel {
        &self.ntsv
    }

    /// Default clock-pin capacitance of a sink (fF).
    pub fn sink_cap_ff(&self) -> f64 {
        self.sink_cap_ff
    }

    /// Maximum capacitance any driver is allowed to see (fF); the DP prunes
    /// candidates that violate it.
    pub fn max_load_ff(&self) -> f64 {
        self.max_load_ff
    }

    /// Standard-cell row height (nm); used by the benchmark generator.
    pub fn row_height_nm(&self) -> i64 {
        self.row_height_nm
    }

    /// Looks a layer up by name.
    pub fn layer_by_name(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// Expands this technology under a PVT [`Corner`]: the designated
    /// back-side layer takes the corner's back-wire factors, every other
    /// layer takes the front-wire factors, the buffer takes the delay
    /// factor (linearised *and* NLDM views, see [`BufferModel::derated`])
    /// and the nTSV its RC factors. The result is named
    /// `"<base>@<corner>"`. Electrical boundaries (`max_load_ff`,
    /// `sink_cap_ff`, footprints) are corner-invariant, and the identity
    /// corner reproduces this technology's timing bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::BadDerate`] when any factor is non-positive
    /// or not finite.
    pub fn derated(&self, corner: &Corner) -> Result<Technology, TechError> {
        let mut t = self.clone().with_derates(corner.derate())?;
        t.name = format!("{}@{}", self.name, corner.name());
        Ok(t)
    }

    /// Applies a validated factor set in place (shared by
    /// [`Technology::derated`] and [`TechnologyBuilder::derate`] so the
    /// two paths cannot drift).
    fn with_derates(mut self, d: &DerateFactors) -> Result<Technology, TechError> {
        d.validate()?;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let w = if i == self.back_idx {
                d.back_wire
            } else {
                d.front_wire
            };
            *layer = layer.derated(w.res, w.cap);
        }
        self.buffer = self.buffer.derated(d.buffer_delay);
        self.ntsv = self.ntsv.derated(d.ntsv.res, d.ntsv.cap);
        Ok(self)
    }
}

/// Builder for [`Technology`] (see [`Technology::builder`]).
///
/// ```
/// use dscts_tech::{BufferModel, Layer, NtsvModel, Technology};
///
/// let tech = Technology::builder()
///     .name("toy")
///     .layer(Layer::new("MF", 0.02, 0.13))
///     .layer(Layer::new("MB", 0.0005, 0.11))
///     .front_layer("MF")
///     .back_layer("MB")
///     .buffer(BufferModel::asap7_bufx4())
///     .ntsv(NtsvModel::iedm21())
///     .build()
///     .expect("valid technology");
/// assert_eq!(tech.front_layer().name(), "MF");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TechnologyBuilder {
    name: String,
    layers: Vec<Layer>,
    front: Option<String>,
    back: Option<String>,
    buffer: Option<BufferModel>,
    ntsv: Option<NtsvModel>,
    sink_cap_ff: Option<f64>,
    max_load_ff: Option<f64>,
    row_height_nm: Option<i64>,
    derate: Option<DerateFactors>,
}

impl TechnologyBuilder {
    /// Sets the technology name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Registers a layer.
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Selects the front-side clock routing layer by name.
    pub fn front_layer(mut self, name: impl Into<String>) -> Self {
        self.front = Some(name.into());
        self
    }

    /// Selects the back-side clock routing layer by name.
    pub fn back_layer(mut self, name: impl Into<String>) -> Self {
        self.back = Some(name.into());
        self
    }

    /// Sets the clock buffer model.
    pub fn buffer(mut self, buffer: BufferModel) -> Self {
        self.buffer = Some(buffer);
        self
    }

    /// Sets the nTSV model.
    pub fn ntsv(mut self, ntsv: NtsvModel) -> Self {
        self.ntsv = Some(ntsv);
        self
    }

    /// Sets the default sink clock-pin capacitance (fF).
    pub fn sink_cap_ff(mut self, cap: f64) -> Self {
        self.sink_cap_ff = Some(cap);
        self
    }

    /// Sets the maximum driven capacitance (fF).
    pub fn max_load_ff(mut self, cap: f64) -> Self {
        self.max_load_ff = Some(cap);
        self
    }

    /// Sets the standard-cell row height (nm).
    pub fn row_height_nm(mut self, h: i64) -> Self {
        self.row_height_nm = Some(h);
        self
    }

    /// Applies a PVT derate factor set to the assembled technology
    /// (validated in [`TechnologyBuilder::build`]: non-positive, NaN or
    /// infinite factors are rejected with [`TechError::BadDerate`]). Use
    /// [`Technology::derated`] to expand an existing technology under a
    /// named [`Corner`] instead.
    pub fn derate(mut self, factors: DerateFactors) -> Self {
        self.derate = Some(factors);
        self
    }

    /// Validates and assembles the [`Technology`].
    ///
    /// # Errors
    ///
    /// Returns [`TechError`] when no layers were registered, a referenced
    /// layer name is unknown, a parameter is non-positive, or a derate
    /// factor (see [`TechnologyBuilder::derate`]) is non-positive or not
    /// finite.
    pub fn build(self) -> Result<Technology, TechError> {
        if self.layers.is_empty() {
            return Err(TechError::NoLayers);
        }
        let find = |name: &Option<String>, default: usize| -> Result<usize, TechError> {
            match name {
                None => Ok(default),
                Some(n) => self
                    .layers
                    .iter()
                    .position(|l| l.name() == n)
                    .ok_or_else(|| TechError::UnknownLayer(n.clone())),
            }
        };
        let front_idx = find(&self.front, 0)?;
        let back_idx = find(&self.back, self.layers.len() - 1)?;
        let sink_cap_ff = self.sink_cap_ff.unwrap_or(1.1);
        let max_load_ff = self.max_load_ff.unwrap_or(80.0);
        let row_height_nm = self.row_height_nm.unwrap_or(270);
        if sink_cap_ff <= 0.0 {
            return Err(TechError::NonPositive("sink_cap_ff"));
        }
        if max_load_ff <= 0.0 {
            return Err(TechError::NonPositive("max_load_ff"));
        }
        if row_height_nm <= 0 {
            return Err(TechError::NonPositive("row_height_nm"));
        }
        let tech = Technology {
            name: if self.name.is_empty() {
                "custom".to_owned()
            } else {
                self.name
            },
            layers: self.layers,
            front_idx,
            back_idx,
            buffer: self.buffer.unwrap_or_else(BufferModel::asap7_bufx4),
            ntsv: self.ntsv.unwrap_or_else(NtsvModel::iedm21),
            sink_cap_ff,
            max_load_ff,
            row_height_nm,
        };
        match self.derate {
            Some(d) => tech.with_derates(&d),
            None => Ok(tech),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asap7_table_values_match_paper() {
        let t = Technology::asap7();
        // Table I: M3 unit res 0.024222 kΩ/µm, cap 0.12918 fF/µm.
        let m3 = t.layer_by_name("M3").unwrap();
        assert!((m3.res_kohm_per_um() - 0.024222).abs() < 1e-9);
        assert!((m3.cap_ff_per_um() - 0.12918).abs() < 1e-9);
        // BM1~BM3: 0.000384 / 0.116264.
        let bm = t.layer_by_name("BM1~BM3").unwrap();
        assert!((bm.res_kohm_per_um() - 0.000384).abs() < 1e-9);
        assert!((bm.cap_ff_per_um() - 0.116264).abs() < 1e-9);
        assert_eq!(t.front_layer().name(), "M3");
        assert_eq!(t.back_layer().name(), "BM1~BM3");
    }

    #[test]
    fn asap7_has_all_ten_table_rows() {
        let t = Technology::asap7();
        for name in [
            "M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "BM1~BM3",
        ] {
            assert!(t.layer_by_name(name).is_some(), "missing layer {name}");
        }
        assert_eq!(t.layers().len(), 10);
    }

    #[test]
    fn rc_conversion_is_per_nm() {
        let t = Technology::asap7();
        let rc = t.rc(Side::Front);
        // 0.024222 kΩ/µm = 2.4222e-5 kΩ/nm
        assert!((rc.res_per_nm - 0.024222e-3).abs() < 1e-12);
        assert!((rc.cap_per_nm - 0.12918e-3).abs() < 1e-12);
    }

    #[test]
    fn side_flip_is_involution() {
        assert_eq!(Side::Front.flipped(), Side::Back);
        assert_eq!(Side::Back.flipped().flipped(), Side::Back);
        assert_eq!(Side::Front.to_string(), "F");
        assert_eq!(Side::Back.to_string(), "B");
    }

    #[test]
    fn builder_rejects_unknown_layer() {
        let err = Technology::builder()
            .layer(Layer::new("MX", 0.01, 0.1))
            .front_layer("NOPE")
            .build()
            .unwrap_err();
        assert_eq!(err, TechError::UnknownLayer("NOPE".to_owned()));
        assert!(err.to_string().contains("NOPE"));
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(
            Technology::builder().build().unwrap_err(),
            TechError::NoLayers
        );
    }

    #[test]
    fn builder_rejects_nonpositive() {
        let err = Technology::builder()
            .layer(Layer::new("MX", 0.01, 0.1))
            .sink_cap_ff(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err, TechError::NonPositive("sink_cap_ff"));
    }

    #[test]
    fn builder_rejects_nonpositive_derate() {
        let base = |d: DerateFactors| {
            Technology::builder()
                .layer(Layer::new("MF", 0.02, 0.13))
                .layer(Layer::new("MB", 0.0005, 0.11))
                .derate(d)
                .build()
        };
        let err = base(DerateFactors {
            buffer_delay: 0.0,
            ..DerateFactors::nominal()
        })
        .unwrap_err();
        assert_eq!(err, TechError::BadDerate("buffer_delay"));
        assert!(err.to_string().contains("buffer_delay"));
        let err = base(DerateFactors {
            front_wire: WireDerate {
                res: -1.0,
                cap: 1.0,
            },
            ..DerateFactors::nominal()
        })
        .unwrap_err();
        assert_eq!(err, TechError::BadDerate("front_wire.res"));
    }

    #[test]
    fn builder_rejects_nan_and_infinite_derate() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Technology::builder()
                .layer(Layer::new("MF", 0.02, 0.13))
                .derate(DerateFactors {
                    ntsv: WireDerate { res: 1.0, cap: bad },
                    ..DerateFactors::nominal()
                })
                .build()
                .unwrap_err();
            assert_eq!(err, TechError::BadDerate("ntsv.cap"));
        }
    }

    #[test]
    fn builder_derate_scales_like_technology_derated() {
        // The builder path and the Corner expansion path share one
        // implementation; spot-check they agree on the scaled values.
        let factors = Corner::asap7_ss().derate().to_owned();
        let plain = Technology::builder()
            .layer(Layer::new("MF", 0.02, 0.13))
            .layer(Layer::new("MB", 0.0005, 0.11))
            .build()
            .unwrap();
        let derated = Technology::builder()
            .layer(Layer::new("MF", 0.02, 0.13))
            .layer(Layer::new("MB", 0.0005, 0.11))
            .derate(factors)
            .build()
            .unwrap();
        let via_corner = plain.derated(&Corner::asap7_ss()).unwrap();
        assert_eq!(derated.rc(Side::Front), via_corner.rc(Side::Front));
        assert_eq!(derated.rc(Side::Back), via_corner.rc(Side::Back));
        assert_eq!(derated.buffer(), via_corner.buffer());
        assert_eq!(derated.ntsv(), via_corner.ntsv());
    }

    #[test]
    fn builder_defaults_are_sane() {
        let t = Technology::builder()
            .layer(Layer::new("MF", 0.02, 0.13))
            .layer(Layer::new("MB", 0.0005, 0.11))
            .build()
            .unwrap();
        assert_eq!(t.front_layer().name(), "MF");
        assert_eq!(t.back_layer().name(), "MB");
        assert!(t.sink_cap_ff() > 0.0);
        assert!(t.max_load_ff() > 0.0);
    }
}
