//! Property tests: DME produces valid, zero-skew trees on random inputs.

use dscts_dme::{Terminal, Topology, ZstDme};
use dscts_geom::Point;
use dscts_tech::WireRc;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rc() -> WireRc {
    WireRc {
        res_per_nm: 0.024222e-3,
        cap_per_nm: 0.12918e-3,
    }
}

fn random_terminals(n: usize, seed: u64, span: i64) -> Vec<Terminal> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Terminal::new(
                Point::new(rng.random_range(0..span), rng.random_range(0..span)),
                rng.random_range(1.0..5.0),
            )
        })
        .collect()
}

fn skew_of(tree: &dscts_dme::RoutedTree) -> f64 {
    let a = tree.sink_arrivals(rc());
    let max = a.iter().cloned().fold(f64::MIN, f64::max);
    let min = a.iter().cloned().fold(f64::MAX, f64::min);
    max - min
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zst_dme_zero_skew_random(n in 2usize..40, seed in 0u64..1000) {
        let terms = random_terminals(n, seed, 100_000);
        let topo = Topology::matching(&terms);
        prop_assert!(topo.validate(n).is_ok());
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(0, 0));
        prop_assert_eq!(tree.validate(), Ok(()));
        prop_assert_eq!(tree.terminal_count(), n);
        // Integer rounding accumulates sub-ps noise per merge level.
        prop_assert!(skew_of(&tree) < 0.2, "skew {}", skew_of(&tree));
    }

    #[test]
    fn bisection_topology_also_balances(n in 2usize..40, seed in 0u64..500) {
        let terms = random_terminals(n, seed, 80_000);
        let topo = Topology::bisection(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(40_000, 40_000));
        prop_assert_eq!(tree.validate(), Ok(()));
        prop_assert!(skew_of(&tree) < 0.2, "skew {}", skew_of(&tree));
    }

    #[test]
    fn heterogeneous_tap_delays_balance(n in 2usize..20, seed in 0u64..200) {
        // Terminals that summarise routed subtrees with different delays.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD5C7);
        let terms: Vec<Terminal> = random_terminals(n, seed, 60_000)
            .into_iter()
            .map(|t| Terminal::with_delay(t.pos, t.cap, rng.random_range(0.0..20.0)))
            .collect();
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(0, 0));
        prop_assert_eq!(tree.validate(), Ok(()));
        // Snaking may be needed; allow slightly more rounding noise.
        prop_assert!(skew_of(&tree) < 0.6, "skew {}", skew_of(&tree));
    }

    #[test]
    fn wirelength_at_least_steiner_lower_bound(n in 2usize..30, seed in 0u64..300) {
        // Any tree connecting the terminals is at least half the bounding
        // box perimeter long.
        let terms = random_terminals(n, seed, 120_000);
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(0, 0));
        let bb = dscts_geom::bounding_box(terms.iter().map(|t| t.pos)).unwrap();
        let half_perimeter = bb.width() + bb.height();
        prop_assert!(tree.total_wirelength() >= half_perimeter / 2);
    }

    #[test]
    fn edge_lengths_cover_geometry(n in 2usize..25, seed in 0u64..300) {
        let terms = random_terminals(n, seed, 90_000);
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(45_000, 0));
        for node in tree.nodes().iter() {
            if let Some(p) = node.parent {
                let d = node.pos.manhattan(tree.nodes()[p as usize].pos);
                prop_assert!(node.edge_len >= d);
            }
        }
    }

    #[test]
    fn clustered_beats_naive_on_imbalanced_sets(seed in 0u64..40) {
        // The paper's motivation for hierarchical DME (§III-B): on strongly
        // imbalanced sink distributions, topology quality dominates
        // wirelength. A bisection (locality-aware) topology should not be
        // dramatically worse than matching, and both must stay within 4x of
        // the Steiner lower bound.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut terms = Vec::new();
        // Dense clump + far-away stragglers.
        for _ in 0..30 {
            terms.push(Terminal::new(
                Point::new(rng.random_range(0..5_000), rng.random_range(0..5_000)),
                2.0,
            ));
        }
        for _ in 0..3 {
            terms.push(Terminal::new(
                Point::new(rng.random_range(90_000..100_000), rng.random_range(90_000..100_000)),
                2.0,
            ));
        }
        // Reference: minimum spanning tree length (Prim), a constant-factor
        // proxy for the rectilinear Steiner minimum.
        let mst = {
            let pts: Vec<Point> = terms.iter().map(|t| t.pos).collect();
            let mut in_tree = vec![false; pts.len()];
            let mut best = vec![i64::MAX; pts.len()];
            in_tree[0] = true;
            for i in 1..pts.len() {
                best[i] = pts[i].manhattan(pts[0]);
            }
            let mut total = 0i64;
            for _ in 1..pts.len() {
                let (i, _) = best
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !in_tree[i])
                    .min_by_key(|&(_, &d)| d)
                    .unwrap();
                total += best[i];
                in_tree[i] = true;
                for j in 0..pts.len() {
                    if !in_tree[j] {
                        best[j] = best[j].min(pts[j].manhattan(pts[i]));
                    }
                }
            }
            total
        };
        for topo in [Topology::matching(&terms), Topology::bisection(&terms)] {
            let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(0, 0));
            // Geometric metal stays within a small factor of the MST; the
            // *electrical* length may blow up through snaking — that
            // inflation is exactly the cost buffer-based balancing avoids.
            prop_assert!(tree.geometric_wirelength() < 4 * mst,
                "geom wl {} vs mst {}", tree.geometric_wirelength(), mst);
            prop_assert!(tree.total_wirelength() >= tree.geometric_wirelength());
        }
    }
}
