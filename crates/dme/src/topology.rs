use crate::zst::Terminal;
use dscts_geom::Point;

/// One node of a binary clock topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyNode {
    /// Children node indices (internal nodes) — `None` for leaves.
    pub children: Option<(u32, u32)>,
    /// Terminal index for leaves — `None` for internal nodes.
    pub terminal: Option<u32>,
}

/// A binary merge topology over a terminal set, in bottom-up order
/// (children always precede parents; the root is the last node).
///
/// Build one with [`Topology::matching`] (greedy nearest-neighbour pairing,
/// the classic Edahiro-style approach shown in Fig. 5(c) of the paper) or
/// [`Topology::bisection`] (recursive balanced splits along the wider axis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: Vec<TopologyNode>,
}

impl Topology {
    /// Nodes in bottom-up order.
    pub fn nodes(&self) -> &[TopologyNode] {
        &self.nodes
    }

    /// Index of the root node.
    pub fn root(&self) -> u32 {
        (self.nodes.len() - 1) as u32
    }

    /// Number of nodes (= `2·n_terminals − 1` for `n ≥ 1`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology is empty (never true for valid inputs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Greedy nearest-neighbour matching topology: at every level, the
    /// closest unmatched pair of subtree anchor points merges; an odd
    /// leftover is carried to the next level.
    ///
    /// # Panics
    ///
    /// Panics if `terminals` is empty.
    pub fn matching(terminals: &[Terminal]) -> Topology {
        assert!(
            !terminals.is_empty(),
            "topology needs at least one terminal"
        );
        let mut nodes: Vec<TopologyNode> = (0..terminals.len())
            .map(|i| TopologyNode {
                children: None,
                terminal: Some(i as u32),
            })
            .collect();
        // Active set: (node index, anchor point).
        let mut active: Vec<(u32, Point)> = terminals
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t.pos))
            .collect();
        while active.len() > 1 {
            // All pairwise distances at this level.
            let mut pairs: Vec<(i64, usize, usize)> = Vec::new();
            for i in 0..active.len() {
                for j in (i + 1)..active.len() {
                    pairs.push((active[i].1.manhattan(active[j].1), i, j));
                }
            }
            pairs.sort_unstable();
            let mut used = vec![false; active.len()];
            let mut next: Vec<(u32, Point)> = Vec::with_capacity(active.len() / 2 + 1);
            for (_, i, j) in pairs {
                if used[i] || used[j] {
                    continue;
                }
                used[i] = true;
                used[j] = true;
                let id = nodes.len() as u32;
                nodes.push(TopologyNode {
                    children: Some((active[i].0, active[j].0)),
                    terminal: None,
                });
                next.push((id, active[i].1.midpoint(active[j].1)));
            }
            for (i, &(id, p)) in active.iter().enumerate() {
                if !used[i] {
                    next.push((id, p));
                }
            }
            active = next;
        }
        Topology { nodes }
    }

    /// Balanced-bisection topology: recursively split the terminal set in
    /// half along the wider spatial axis. Produces depth `⌈log2 n⌉` trees
    /// that are robust on strongly imbalanced point sets.
    ///
    /// # Panics
    ///
    /// Panics if `terminals` is empty.
    pub fn bisection(terminals: &[Terminal]) -> Topology {
        assert!(
            !terminals.is_empty(),
            "topology needs at least one terminal"
        );
        let mut nodes = Vec::with_capacity(2 * terminals.len());
        let mut idx: Vec<u32> = (0..terminals.len() as u32).collect();
        let root = Self::bisect(&mut idx, terminals, &mut nodes);
        debug_assert_eq!(root as usize, nodes.len() - 1);
        Topology { nodes }
    }

    fn bisect(idx: &mut [u32], terminals: &[Terminal], nodes: &mut Vec<TopologyNode>) -> u32 {
        if idx.len() == 1 {
            nodes.push(TopologyNode {
                children: None,
                terminal: Some(idx[0]),
            });
            return (nodes.len() - 1) as u32;
        }
        let xs: Vec<i64> = idx.iter().map(|&i| terminals[i as usize].pos.x).collect();
        let ys: Vec<i64> = idx.iter().map(|&i| terminals[i as usize].pos.y).collect();
        // invariant: the idx.len() == 1 case returned above, so the slices
        // are non-empty and both extrema exist.
        let span =
            |v: &[i64]| v.iter().max().copied().unwrap_or(0) - v.iter().min().copied().unwrap_or(0);
        if span(&xs) >= span(&ys) {
            idx.sort_by_key(|&i| (terminals[i as usize].pos.x, terminals[i as usize].pos.y));
        } else {
            idx.sort_by_key(|&i| (terminals[i as usize].pos.y, terminals[i as usize].pos.x));
        }
        let mid = idx.len() / 2;
        let (lo, hi) = idx.split_at_mut(mid);
        let a = Self::bisect(lo, terminals, nodes);
        let b = Self::bisect(hi, terminals, nodes);
        nodes.push(TopologyNode {
            children: Some((a, b)),
            terminal: None,
        });
        (nodes.len() - 1) as u32
    }

    /// Checks structural sanity: bottom-up order, every terminal appearing
    /// exactly once, `2n − 1` nodes.
    pub fn validate(&self, n_terminals: usize) -> Result<(), String> {
        if self.nodes.len() != 2 * n_terminals - 1 {
            return Err(format!(
                "expected {} nodes for {} terminals, got {}",
                2 * n_terminals - 1,
                n_terminals,
                self.nodes.len()
            ));
        }
        let mut seen = vec![false; n_terminals];
        for (i, n) in self.nodes.iter().enumerate() {
            match (n.children, n.terminal) {
                (Some((a, b)), None) => {
                    if a as usize >= i || b as usize >= i {
                        return Err(format!("node {i} references later child"));
                    }
                }
                (None, Some(t)) => {
                    if seen[t as usize] {
                        return Err(format!("terminal {t} appears twice"));
                    }
                    seen[t as usize] = true;
                }
                _ => return Err(format!("node {i} is neither leaf nor internal")),
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err("not all terminals reachable".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(pts: &[(i64, i64)]) -> Vec<Terminal> {
        pts.iter()
            .map(|&(x, y)| Terminal::new(Point::new(x, y), 1.0))
            .collect()
    }

    #[test]
    fn matching_single_terminal() {
        let t = terms(&[(5, 5)]);
        let topo = Topology::matching(&t);
        assert_eq!(topo.len(), 1);
        assert!(topo.validate(1).is_ok());
    }

    #[test]
    fn matching_pairs_nearest_first() {
        // Two tight pairs far apart: matching must pair (0,1) and (2,3).
        let t = terms(&[(0, 0), (1, 0), (100, 100), (101, 100)]);
        let topo = Topology::matching(&t);
        assert!(topo.validate(4).is_ok());
        let pairs: Vec<(u32, u32)> = topo.nodes().iter().filter_map(|n| n.children).collect();
        // First two merges must combine the tight pairs (in some order).
        let leaf_pairs: Vec<(u32, u32)> = pairs
            .iter()
            .filter(|&&(a, b)| a < 4 && b < 4)
            .cloned()
            .collect();
        assert_eq!(leaf_pairs.len(), 2);
        for (a, b) in leaf_pairs {
            let (a, b) = (a.min(b), a.max(b));
            assert!(
                ((a, b) == (0, 1)) || ((a, b) == (2, 3)),
                "bad pair ({a},{b})"
            );
        }
    }

    #[test]
    fn matching_handles_odd_counts() {
        let t = terms(&[(0, 0), (10, 0), (20, 0), (30, 0), (40, 0)]);
        let topo = Topology::matching(&t);
        assert_eq!(topo.len(), 9);
        assert!(topo.validate(5).is_ok());
    }

    #[test]
    fn bisection_is_balanced() {
        let t: Vec<Terminal> = (0..16)
            .map(|i| Terminal::new(Point::new(i * 10, 0), 1.0))
            .collect();
        let topo = Topology::bisection(&t);
        assert!(topo.validate(16).is_ok());
        // Depth of a balanced 16-leaf tree is 4; count max depth.
        let mut depth = vec![0usize; topo.len()];
        for (i, n) in topo.nodes().iter().enumerate() {
            if let Some((a, b)) = n.children {
                depth[i] = 1 + depth[a as usize].max(depth[b as usize]);
            }
        }
        assert_eq!(depth[topo.root() as usize], 4);
    }

    #[test]
    fn validate_rejects_wrong_node_count() {
        let t = terms(&[(0, 0), (1, 1)]);
        let topo = Topology::matching(&t);
        assert!(topo.validate(3).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one terminal")]
    fn empty_terminals_panic() {
        let _ = Topology::matching(&[]);
    }
}
