//! Deferred-merge embedding (DME) clock routing.
//!
//! DME builds a zero-skew (under Elmore delay) routed clock tree in two
//! passes over a given binary *topology*:
//!
//! 1. **bottom-up**: each subtree is summarised by a *merging segment* (a
//!    Manhattan arc, represented as a [`dscts_geom::TiltedRect`]) — the locus
//!    of tapping points that preserve zero skew — together with the tapping
//!    delay and subtree capacitance. Merging two children splits the
//!    distance between their segments into edge lengths `ea + eb = d` that
//!    equalise Elmore delay, resorting to *wire snaking* (detour wire,
//!    `ea = 0, eb > d`) when one subtree is too slow to balance within `d`
//!    (Boese–Kahng / Edahiro, refs. \[13\], \[14\] of the paper);
//! 2. **top-down**: starting from the point of the root merging segment
//!    nearest the clock source, each child embeds at the point of its
//!    merging segment nearest its parent.
//!
//! The crate provides the [`Topology`] builders (nearest-neighbour
//! *matching*, the classic approach the paper compares against, plus a
//! center-of-mass balanced bisection), the [`ZstDme`] router, and the
//! [`RoutedTree`] result with its own Elmore evaluation used by tests and
//! by the synthesis core.
//!
//! # Example
//!
//! ```
//! use dscts_dme::{Terminal, Topology, ZstDme};
//! use dscts_geom::Point;
//! use dscts_tech::{Side, Technology};
//!
//! let tech = Technology::asap7();
//! let terminals: Vec<Terminal> = (0..8)
//!     .map(|i| Terminal::new(Point::new(i * 10_000, (i % 3) * 8_000), 2.0))
//!     .collect();
//! let topo = Topology::matching(&terminals);
//! let tree = ZstDme::new(tech.rc(Side::Front)).run(&topo, &terminals, Point::new(0, -20_000));
//! // Zero skew by construction (within integer-rounding noise):
//! let arrivals = tree.sink_arrivals(tech.rc(Side::Front));
//! let max = arrivals.iter().cloned().fold(f64::MIN, f64::max);
//! let min = arrivals.iter().cloned().fold(f64::MAX, f64::min);
//! assert!(max - min < 0.05, "skew {} ps", max - min);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod routed;
mod topology;
mod zst;

pub use routed::{RoutedNode, RoutedTree};
pub use topology::{Topology, TopologyNode};
pub use zst::{Terminal, ZstDme};
