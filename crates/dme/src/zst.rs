use crate::routed::{RoutedNode, RoutedTree};
use crate::topology::Topology;
use dscts_geom::{Point, TiltedRect};
use dscts_tech::WireRc;

/// A DME terminal: a point with downstream capacitance and an optional
/// tapping delay (used for the centroids of already-routed subtrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Terminal {
    /// Location (nm).
    pub pos: Point,
    /// Downstream capacitance presented to the tree (fF).
    pub cap: f64,
    /// Delay from this point to its own sinks (ps); zero for bare sinks.
    pub delay: f64,
}

impl Terminal {
    /// A bare sink terminal with zero tapping delay.
    pub fn new(pos: Point, cap: f64) -> Self {
        Terminal {
            pos,
            cap,
            delay: 0.0,
        }
    }

    /// A terminal summarising an already-routed subtree.
    pub fn with_delay(pos: Point, cap: f64, delay: f64) -> Self {
        Terminal { pos, cap, delay }
    }
}

/// Zero-skew DME router (Elmore balanced, with wire snaking when needed).
///
/// See the crate docs for the algorithm outline and an example.
#[derive(Debug, Clone)]
pub struct ZstDme {
    rc: WireRc,
}

#[derive(Debug, Clone)]
struct MergeState {
    ms: TiltedRect,
    delay: f64,
    cap: f64,
    /// `(edge to child a, edge to child b)` electrical lengths (nm).
    edges: Option<(i64, i64)>,
}

impl ZstDme {
    /// Creates a router for wire stock `rc` (the layer the initial tree is
    /// planned on; the synthesis core re-evaluates per-side later).
    pub fn new(rc: WireRc) -> Self {
        assert!(
            rc.res_per_nm > 0.0 && rc.cap_per_nm > 0.0,
            "DME needs positive wire parasitics"
        );
        ZstDme { rc }
    }

    /// Routes `topo` over `terminals`, feeding the tree from `source`.
    ///
    /// The returned tree has the source as node 0; its single child is the
    /// DME tree root embedded at the nearest point of the root merging
    /// segment.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not validate against the terminal set.
    pub fn run(&self, topo: &Topology, terminals: &[Terminal], source: Point) -> RoutedTree {
        topo.validate(terminals.len())
            .expect("topology must match terminals");
        let n = topo.len();
        let r = self.rc.res_per_nm;
        let c = self.rc.cap_per_nm;

        // ---- Bottom-up: merging segments. ----
        let mut st: Vec<MergeState> = Vec::with_capacity(n);
        for node in topo.nodes() {
            let state = match (node.children, node.terminal) {
                (None, Some(t)) => {
                    let t = &terminals[t as usize];
                    MergeState {
                        ms: TiltedRect::from_point(t.pos),
                        delay: t.delay,
                        cap: t.cap,
                        edges: None,
                    }
                }
                (Some((a, b)), None) => {
                    let (sa, sb) = (&st[a as usize], &st[b as usize]);
                    let (ea, eb) =
                        balance_split(r, c, sa.ms.dist(&sb.ms), sa.delay, sa.cap, sb.delay, sb.cap);
                    let ms = sa
                        .ms
                        .expanded(ea)
                        .intersect(&sb.ms.expanded(eb))
                        .unwrap_or_else(|| {
                            // Rounding starved the intersection; collapse to
                            // the closest point of the nearer child.
                            TiltedRect::from_point(sa.ms.nearest_point(sb.ms.center()))
                        });
                    let wire = |e: i64, cap: f64| r * e as f64 * (c * e as f64 + cap);
                    let da = sa.delay + wire(ea, sa.cap);
                    let db = sb.delay + wire(eb, sb.cap);
                    MergeState {
                        ms,
                        delay: da.max(db),
                        cap: sa.cap + sb.cap + c * (ea + eb) as f64,
                        edges: Some((ea, eb)),
                    }
                }
                _ => unreachable!("validated topology"),
            };
            st.push(state);
        }

        // ---- Top-down: embedding. ----
        let mut nodes: Vec<RoutedNode> = vec![RoutedNode {
            pos: source,
            parent: None,
            edge_len: 0,
            terminal: None,
        }];
        let root_t = topo.root() as usize;
        let root_pos = st[root_t].ms.nearest_point(source);
        nodes.push(RoutedNode {
            pos: root_pos,
            parent: Some(0),
            edge_len: source.manhattan(root_pos),
            terminal: topo.nodes()[root_t].terminal,
        });
        // Parent topo index and first-child flag for every topo node.
        let mut topo_parent: Vec<Option<(usize, bool)>> = vec![None; n];
        for (i, node) in topo.nodes().iter().enumerate() {
            if let Some((a, b)) = node.children {
                topo_parent[a as usize] = Some((i, true));
                topo_parent[b as usize] = Some((i, false));
            }
        }
        // Stack of (topo node, routed parent index).
        let mut stack: Vec<(usize, u32)> = Vec::new();
        if let Some((a, b)) = topo.nodes()[root_t].children {
            stack.push((a as usize, 1));
            stack.push((b as usize, 1));
        }
        while let Some((t, parent_routed)) = stack.pop() {
            let (parent_topo, is_first) = topo_parent[t].expect("child has a parent");
            let (ea, eb) = st[parent_topo].edges.expect("internal node has edges");
            let e = if is_first { ea } else { eb };
            let ppos = nodes[parent_routed as usize].pos;
            let q = st[t].ms.nearest_point(ppos);
            let dist = ppos.manhattan(q);
            let id = nodes.len() as u32;
            nodes.push(RoutedNode {
                pos: q,
                parent: Some(parent_routed),
                edge_len: e.max(dist),
                terminal: topo.nodes()[t].terminal,
            });
            if let Some((a, b)) = topo.nodes()[t].children {
                stack.push((a as usize, id));
                stack.push((b as usize, id));
            }
        }

        let tree = RoutedTree::new(
            nodes,
            terminals.iter().map(|t| t.delay).collect(),
            terminals.iter().map(|t| t.cap).collect(),
        );
        debug_assert_eq!(tree.validate(), Ok(()));
        tree
    }
}

/// Splits the merge distance `d` into `(ea, eb)` equalising Elmore delay,
/// snaking (detour > `d`) on the faster side when balancing inside `d` is
/// impossible.
fn balance_split(r: f64, c: f64, d: i64, ta: f64, ca: f64, tb: f64, cb: f64) -> (i64, i64) {
    let df = d as f64;
    let denom = 2.0 * r * c * df + r * (ca + cb);
    let x = if denom > 0.0 {
        (tb - ta + r * c * df * df + r * cb * df) / denom
    } else {
        // Zero distance and zero caps: split trivially.
        0.0
    };
    if x < 0.0 {
        // Subtree a is too slow: tap on a's segment, snake wire toward b.
        let eb = extend_for_delay(r, c, cb, ta - tb).max(df);
        (0, eb.round() as i64)
    } else if x > df {
        let ea = extend_for_delay(r, c, ca, tb - ta).max(df);
        (ea.round() as i64, 0)
    } else {
        let ea = x.round().clamp(0.0, df) as i64;
        (ea, d - ea)
    }
}

/// Length `e` of wire with downstream cap `cap` whose Elmore delay equals
/// `target` (ps): solves `r·c·e² + r·cap·e = target`.
fn extend_for_delay(r: f64, c: f64, cap: f64, target: f64) -> f64 {
    if target <= 0.0 {
        return 0.0;
    }
    let a = r * c;
    let b = r * cap;
    if a <= 0.0 {
        return if b > 0.0 { target / b } else { 0.0 };
    }
    (-b + (b * b + 4.0 * a * target).sqrt()) / (2.0 * a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> WireRc {
        // M3-like stock.
        WireRc {
            res_per_nm: 0.024222e-3,
            cap_per_nm: 0.12918e-3,
        }
    }

    fn skew(tree: &RoutedTree, rc: WireRc) -> f64 {
        let a = tree.sink_arrivals(rc);
        let max = a.iter().cloned().fold(f64::MIN, f64::max);
        let min = a.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }

    #[test]
    fn symmetric_pair_taps_in_the_middle() {
        let terms = vec![
            Terminal::new(Point::new(0, 0), 2.0),
            Terminal::new(Point::new(20_000, 0), 2.0),
        ];
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(10_000, 30_000));
        assert_eq!(tree.validate(), Ok(()));
        assert!(skew(&tree, rc()) < 0.01);
        // The tap sits on the bisector: equal distance to both sinks.
        let tap = tree.nodes().iter().find(|n| n.parent == Some(0)).unwrap();
        let d0 = tap.pos.manhattan(Point::new(0, 0));
        let d1 = tap.pos.manhattan(Point::new(20_000, 0));
        assert!((d0 - d1).abs() <= 2, "tap {} vs {}", d0, d1);
    }

    #[test]
    fn asymmetric_caps_still_zero_skew() {
        let terms = vec![
            Terminal::new(Point::new(0, 0), 1.0),
            Terminal::new(Point::new(40_000, 10_000), 20.0),
        ];
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(0, 0));
        assert!(skew(&tree, rc()) < 0.05, "skew {}", skew(&tree, rc()));
    }

    #[test]
    fn initial_delay_forces_snaking() {
        // Terminal 0 is "already slow": the wire to terminal 1 must snake.
        let terms = vec![
            Terminal::with_delay(Point::new(0, 0), 2.0, 50.0),
            Terminal::new(Point::new(5_000, 0), 2.0),
        ];
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(0, 10_000));
        assert!(skew(&tree, rc()) < 0.6, "skew {}", skew(&tree, rc()));
        // Some edge must be longer than its Manhattan span.
        let snaked = tree.nodes().iter().enumerate().any(|(i, n)| {
            n.parent.is_some_and(|p| {
                let d = n.pos.manhattan(tree.nodes()[p as usize].pos);
                let _ = i;
                n.edge_len > d
            })
        });
        assert!(snaked, "expected a snaking edge");
    }

    #[test]
    fn four_sinks_grid_balanced() {
        let terms = vec![
            Terminal::new(Point::new(0, 0), 2.0),
            Terminal::new(Point::new(30_000, 0), 2.0),
            Terminal::new(Point::new(0, 30_000), 2.0),
            Terminal::new(Point::new(30_000, 30_000), 2.0),
        ];
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(15_000, 15_000));
        assert_eq!(tree.validate(), Ok(()));
        assert!(skew(&tree, rc()) < 0.02, "skew {}", skew(&tree, rc()));
        // Wirelength should be near the H-tree optimum (90 µm for this
        // square: two 30 µm rails plus the 30 µm cross bar).
        assert!(tree.total_wirelength() <= 105_000);
    }

    #[test]
    fn single_terminal_direct_feed() {
        let terms = vec![Terminal::new(Point::new(7_000, 3_000), 4.0)];
        let topo = Topology::matching(&terms);
        let tree = ZstDme::new(rc()).run(&topo, &terms, Point::new(0, 0));
        assert_eq!(tree.validate(), Ok(()));
        assert_eq!(tree.total_wirelength(), 10_000);
    }

    #[test]
    fn balance_split_covers_distance() {
        let (ea, eb) = balance_split(1e-5, 1e-4, 10_000, 0.0, 5.0, 0.0, 5.0);
        assert_eq!(ea + eb, 10_000);
        assert_eq!(ea, 5_000); // symmetric
    }

    #[test]
    fn balance_split_shifts_toward_lighter_side() {
        // Heavier cap on b pulls the tap toward b (shorter eb).
        let (_ea, eb) = balance_split(1e-5, 1e-4, 10_000, 0.0, 1.0, 0.0, 50.0);
        assert!(eb < 5_000, "eb {eb}");
    }

    #[test]
    fn extend_for_delay_roundtrips() {
        let (r, c, cap) = (1e-5, 1e-4, 3.0);
        let e = extend_for_delay(r, c, cap, 2.5);
        let d = r * e * (c * e + cap);
        assert!((d - 2.5).abs() < 1e-9);
        assert_eq!(extend_for_delay(r, c, cap, 0.0), 0.0);
    }
}
