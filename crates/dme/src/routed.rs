use dscts_geom::{Point, TreeCsr};
use dscts_tech::WireRc;
use dscts_timing::RcTree;

/// One node of a routed clock tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedNode {
    /// Embedded location (nm).
    pub pos: Point,
    /// Parent node index (`None` for the root).
    pub parent: Option<u32>,
    /// Electrical wire length to the parent (nm). At least the Manhattan
    /// distance; strictly greater when the edge carries snaking detour.
    pub edge_len: i64,
    /// Terminal index for leaves (`None` for internal/root nodes).
    pub terminal: Option<u32>,
}

/// A routed (embedded) clock tree: every node has a position, every edge an
/// electrical length. Produced by [`crate::ZstDme`]; consumed by the
/// synthesis core, which decorates edges with buffers/nTSVs.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedTree {
    nodes: Vec<RoutedNode>,
    /// Tapping-point delay offset of each terminal (ps), carried through
    /// from [`crate::Terminal::delay`].
    term_delays: Vec<f64>,
    /// Load capacitance of each terminal (fF).
    term_caps: Vec<f64>,
}

impl RoutedTree {
    pub(crate) fn new(nodes: Vec<RoutedNode>, term_delays: Vec<f64>, term_caps: Vec<f64>) -> Self {
        RoutedTree {
            nodes,
            term_delays,
            term_caps,
        }
    }

    /// Nodes in topological order (parents before children).
    pub fn nodes(&self) -> &[RoutedNode] {
        &self.nodes
    }

    /// The root node index (always 0).
    pub fn root(&self) -> u32 {
        0
    }

    /// Number of terminals this tree drives.
    pub fn terminal_count(&self) -> usize {
        self.term_caps.len()
    }

    /// Total electrical wirelength (nm), including snaking detours.
    pub fn total_wirelength(&self) -> i64 {
        self.nodes.iter().map(|n| n.edge_len).sum()
    }

    /// Geometric wirelength (nm): Manhattan spans only, excluding snaking
    /// detour wire. `total_wirelength() - geometric_wirelength()` measures
    /// how much metal strict delay balancing costs.
    pub fn geometric_wirelength(&self) -> i64 {
        self.nodes
            .iter()
            .filter_map(|n| {
                n.parent
                    .map(|p| n.pos.manhattan(self.nodes[p as usize].pos))
            })
            .sum()
    }

    /// Flat (CSR) child adjacency of the routed tree, via the shared
    /// [`TreeCsr`] helper.
    pub fn csr(&self) -> TreeCsr {
        TreeCsr::from_parents(self.nodes.iter().map(|n| n.parent))
    }

    /// Child indices of every node, as owned vectors. Prefer
    /// [`RoutedTree::csr`] on hot paths.
    pub fn children(&self) -> Vec<Vec<u32>> {
        self.csr().to_nested()
    }

    /// Elmore arrival time at every terminal when the whole tree is routed
    /// as plain wire of stock `rc` driven from the root (no buffers). Each
    /// terminal's own tapping delay offset is included.
    ///
    /// This is the zero-skew target the DME construction balances; the
    /// synthesis core replaces this with pattern-aware evaluation.
    pub fn sink_arrivals(&self, rc: WireRc) -> Vec<f64> {
        let mut rct = RcTree::new(0.0);
        let mut map = vec![rct.root(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            let p = map[n.parent.expect("non-root has parent") as usize];
            let id = rct.add_node(p, rc.res(n.edge_len), rc.cap(n.edge_len));
            if let Some(t) = n.terminal {
                rct.add_cap(id, self.term_caps[t as usize]);
            }
            map[i] = id;
        }
        let delays = rct.elmore();
        let mut arrivals = vec![0.0; self.term_caps.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(t) = n.terminal {
                arrivals[t as usize] = delays[map[i].index()] + self.term_delays[t as usize];
            }
        }
        arrivals
    }

    /// Structural validation: parents precede children, edge lengths cover
    /// the Manhattan distance, every terminal appears exactly once.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty tree".into());
        }
        if self.nodes[0].parent.is_some() {
            return Err("node 0 must be the root".into());
        }
        let mut seen = vec![false; self.term_caps.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            match n.parent {
                None if i != 0 => return Err(format!("non-root node {i} without parent")),
                Some(p) if p as usize >= i => return Err(format!("node {i} has later parent {p}")),
                _ => {}
            }
            if let Some(p) = n.parent {
                let d = n.pos.manhattan(self.nodes[p as usize].pos);
                if n.edge_len < d {
                    return Err(format!("node {i}: edge_len {} < manhattan {d}", n.edge_len));
                }
            }
            if let Some(t) = n.terminal {
                let t = t as usize;
                if t >= seen.len() {
                    return Err(format!("node {i}: terminal {t} out of range"));
                }
                if seen[t] {
                    return Err(format!("terminal {t} embedded twice"));
                }
                seen[t] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err("not all terminals embedded".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> WireRc {
        WireRc {
            res_per_nm: 1e-5,
            cap_per_nm: 1e-4,
        }
    }

    fn two_leaf_tree() -> RoutedTree {
        // root(0) at (0,0) -> internal(1) at (10,0) -> leaves at (20,10) & (20,-10)
        RoutedTree::new(
            vec![
                RoutedNode {
                    pos: Point::new(0, 0),
                    parent: None,
                    edge_len: 0,
                    terminal: None,
                },
                RoutedNode {
                    pos: Point::new(10, 0),
                    parent: Some(0),
                    edge_len: 10,
                    terminal: None,
                },
                RoutedNode {
                    pos: Point::new(20, 10),
                    parent: Some(1),
                    edge_len: 20,
                    terminal: Some(0),
                },
                RoutedNode {
                    pos: Point::new(20, -10),
                    parent: Some(1),
                    edge_len: 20,
                    terminal: Some(1),
                },
            ],
            vec![0.0, 0.0],
            vec![3.0, 3.0],
        )
    }

    #[test]
    fn validates_and_measures() {
        let t = two_leaf_tree();
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.total_wirelength(), 50);
        assert_eq!(t.terminal_count(), 2);
        assert_eq!(t.children()[1], vec![2, 3]);
        assert_eq!(t.csr().children(1), &[2, 3]);
    }

    #[test]
    fn symmetric_tree_has_zero_skew() {
        let t = two_leaf_tree();
        let arr = t.sink_arrivals(wire());
        assert_eq!(arr.len(), 2);
        assert!((arr[0] - arr[1]).abs() < 1e-12);
        assert!(arr[0] > 0.0);
    }

    #[test]
    fn terminal_delay_offsets_shift_arrivals() {
        let mut t = two_leaf_tree();
        t.term_delays[0] = 5.0;
        let arr = t.sink_arrivals(wire());
        assert!((arr[0] - arr[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_short_edge() {
        let mut t = two_leaf_tree();
        t.nodes[2].edge_len = 1; // manhattan distance is 20
        assert!(t.validate().unwrap_err().contains("edge_len"));
    }

    #[test]
    fn validate_catches_duplicate_terminal() {
        let mut t = two_leaf_tree();
        t.nodes[3].terminal = Some(0);
        assert!(t.validate().is_err());
    }
}
