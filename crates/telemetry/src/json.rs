//! A minimal hand-rolled JSON parser, used to validate exported
//! JSON-lines in-process (the build is offline; no serde).
//!
//! Full RFC 8259 value grammar: objects, arrays, strings with escapes
//! (including `\uXXXX` surrogate pairs), numbers (parsed as `f64`),
//! booleans and null. Object keys keep insertion order; duplicate keys
//! are kept as-is and [`Json::get`] returns the first.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON value from `text`, rejecting trailing
/// non-whitespace. Errors carry a byte offset and a short reason.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped run in one slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a `\uXXXX` low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unexpected low surrogate"));
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            other => return Err(self.err(&format!("bad escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_at = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits_at(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits_at(self) {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits_at(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        // invariant: the scanned range is ASCII digits/sign/dot/exp.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_values_and_structure() {
        let v = parse(r#"{"a":[1,2.5,-3e-2],"b":{"c":null,"d":true},"s":"x"}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_array).map(Vec::len), Some(3));
        assert_eq!(
            v.get("a")
                .and_then(Json::as_array)
                .and_then(|a| a[2].as_f64()),
            Some(-0.03)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes_including_surrogate_pairs() {
        let v = parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"\\ud800\"",
            "{} extra",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("7").expect("parses").as_u64(), Some(7));
        assert_eq!(parse("7.5").expect("parses").as_u64(), None);
        assert_eq!(parse("-1").expect("parses").as_u64(), None);
        assert_eq!(parse("\"7\"").expect("parses").as_u64(), None);
    }
}
