//! Structured export: the frozen snapshot types and the hand-rolled
//! JSON-lines writer.
//!
//! One record per line, each a self-describing JSON object whose
//! `"record"` field names its kind:
//!
//! ```text
//! {"record":"meta","schema":"dscts-telemetry","version":1}
//! {"record":"counter","name":"service.accepted","value":128}
//! {"record":"gauge","name":"service.queue_depth","value":0}
//! {"record":"histogram","name":"job.wall_s","count":128,"sum_s":3.1,
//!  "p50_s":0.02,"p95_s":0.09,"p99_s":0.31,"le":[...],"counts":[...]}
//! {"record":"sweep","design":"c4_riscv32i","sinks":760,...}
//! ```
//!
//! The writer emits nothing that the sibling parser ([`crate::parse_json`])
//! cannot read back; the loadtest validates every line in-process with it.

/// A frozen, exportable view of one [`Telemetry`](crate::Telemetry)
/// collector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Sweep-outcome training records, in collection order.
    pub sweeps: Vec<SweepRecord>,
}

/// A frozen histogram: totals, interpolated quantiles, and the raw
/// bucket counts (`le` is each bucket's inclusive upper bound in
/// seconds; the final `f64::MAX` bucket collects overflow).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Registry name (`span.route`, `job.wall_s`, ...).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, seconds.
    pub sum_s: f64,
    /// Interpolated median, seconds.
    pub p50_s: f64,
    /// Interpolated 95th percentile, seconds.
    pub p95_s: f64,
    /// Interpolated 99th percentile, seconds.
    pub p99_s: f64,
    /// `(upper_bound_seconds, count)` per bucket.
    pub buckets: Vec<(f64, u64)>,
}

/// Schema version stamped into every exported sweep record.
///
/// Version history:
/// - `1` (implicit — records carried no version field): the original
///   PR 9 feature/metric tuple.
/// - `2`: adds `schema_version` itself plus the pre-DP design features
///   `stars`, `sink_spread_nm` and `fanout_hist` that learned DSE
///   trains on.
///
/// The dataset ingester (`dscts-learn`) accepts any version it knows how
/// to featurize and skips newer records instead of guessing; the service
/// loadtest validates the field on every exported line.
pub const SWEEP_SCHEMA_VERSION: u32 = 2;

/// One sweep-outcome training record: the design features and mode
/// class a DSE evaluation ran with, and the metrics it produced. This
/// is the raw material for learned design-space exploration (predict
/// metrics from features; skip dominated classes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepRecord {
    /// Record schema version (see [`SWEEP_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Design name.
    pub design: String,
    /// Number of clock sinks.
    pub sinks: u64,
    /// Distinct internal fanout values (the mode-class alphabet size).
    pub distinct_fanouts: u64,
    /// Index of the mode-equivalence class within this sweep.
    pub mode_class: u64,
    /// Smallest fanout threshold mapped to this class.
    pub threshold_lo: u32,
    /// Largest fanout threshold mapped to this class.
    pub threshold_hi: u32,
    /// Nodes placed in intra-side mode by this class's threshold.
    pub intra_nodes: u64,
    /// Leaf clusters (stars) of the routed topology.
    pub stars: u64,
    /// Half-perimeter of the sink bounding box, nm — the cheap spatial
    /// spread feature.
    pub sink_spread_nm: u64,
    /// Log-bucketed histogram of the distinct fanout values: counts in
    /// `[1,8)`, `[8,32)`, `[32,128)`, `[128,∞)`.
    pub fanout_hist: [u64; 4],
    /// Resulting worst sink latency, ps.
    pub latency_ps: f64,
    /// Resulting global skew, ps.
    pub skew_ps: f64,
    /// Buffers inserted.
    pub buffers: u64,
    /// Nano-TSVs inserted.
    pub ntsvs: u64,
    /// Trunk wirelength, nm. Insertion and optimization never move
    /// trunk edges, so this doubles as the pre-DP routed trunk length —
    /// a design feature learned DSE can recompute before any DP runs.
    pub trunk_wirelength_nm: u64,
    /// Switched capacitance, fF.
    pub switched_cap_ff: f64,
}

impl TelemetrySnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialize to JSON-lines: one `meta` header line, then one line
    /// per counter, gauge, histogram and sweep record, in that order
    /// (names sorted within each kind, sweeps in collection order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"record\":\"meta\",\"schema\":\"dscts-telemetry\",\"version\":1}\n");
        for (name, value) in &self.counters {
            out.push_str("{\"record\":\"counter\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push_str("}\n");
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"record\":\"gauge\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push_str("}\n");
        }
        for h in &self.histograms {
            out.push_str("{\"record\":\"histogram\",\"name\":");
            push_json_str(&mut out, &h.name);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            push_f64_field(&mut out, "sum_s", h.sum_s);
            push_f64_field(&mut out, "p50_s", h.p50_s);
            push_f64_field(&mut out, "p95_s", h.p95_s);
            push_f64_field(&mut out, "p99_s", h.p99_s);
            // Export only occupied buckets: the fixed grid is sparse in
            // practice and the bounds identify each bucket on their own.
            out.push_str(",\"le\":[");
            let mut first = true;
            for &(le, _) in h.buckets.iter().filter(|&&(_, c)| c > 0) {
                if !first {
                    out.push(',');
                }
                first = false;
                push_f64(&mut out, le);
            }
            out.push_str("],\"counts\":[");
            let mut first = true;
            for &(_, c) in h.buckets.iter().filter(|&&(_, c)| c > 0) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&c.to_string());
            }
            out.push_str("]}\n");
        }
        for s in &self.sweeps {
            out.push_str("{\"record\":\"sweep\",\"schema_version\":");
            out.push_str(&s.schema_version.to_string());
            out.push_str(",\"design\":");
            push_json_str(&mut out, &s.design);
            out.push_str(&format!(
                ",\"sinks\":{},\"distinct_fanouts\":{},\"mode_class\":{},\
                 \"threshold_lo\":{},\"threshold_hi\":{},\"intra_nodes\":{},\
                 \"stars\":{},\"sink_spread_nm\":{}",
                s.sinks,
                s.distinct_fanouts,
                s.mode_class,
                s.threshold_lo,
                s.threshold_hi,
                s.intra_nodes,
                s.stars,
                s.sink_spread_nm
            ));
            out.push_str(",\"fanout_hist\":[");
            for (i, c) in s.fanout_hist.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push(']');
            push_f64_field(&mut out, "latency_ps", s.latency_ps);
            push_f64_field(&mut out, "skew_ps", s.skew_ps);
            out.push_str(&format!(
                ",\"buffers\":{},\"ntsvs\":{},\"trunk_wirelength_nm\":{}",
                s.buffers, s.ntsvs, s.trunk_wirelength_nm
            ));
            push_f64_field(&mut out, "switched_cap_ff", s.switched_cap_ff);
            out.push_str("}\n");
        }
        out
    }
}

/// Append a JSON string literal (quoted, escaped).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number (non-finite values become 0 — JSON has
/// no NaN/Inf and the metrics layer never produces them anyway).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `Display` for whole floats prints no fraction ("2" for 2.0),
        // which is still a valid JSON number; keep as-is.
    } else if v == f64::MAX {
        // The overflow bucket's sentinel bound.
        out.push_str("1e308");
    } else {
        out.push('0');
    }
}

fn push_f64_field(out: &mut String, name: &str, v: f64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    push_f64(out, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn jsonl_roundtrips_through_own_parser() {
        let snap = TelemetrySnapshot {
            counters: vec![("a\"b\\c".to_owned(), 3), ("plain".to_owned(), 0)],
            gauges: vec![("depth".to_owned(), -4)],
            histograms: vec![HistogramSnapshot {
                name: "job.wall_s".to_owned(),
                count: 2,
                sum_s: 0.25,
                p50_s: 0.1,
                p95_s: 0.2,
                p99_s: 0.2,
                buckets: vec![(1e-3, 0), (1.0, 2), (f64::MAX, 0)],
            }],
            sweeps: vec![SweepRecord {
                schema_version: SWEEP_SCHEMA_VERSION,
                design: "c1_jpeg".to_owned(),
                sinks: 2000,
                distinct_fanouts: 5,
                mode_class: 1,
                threshold_lo: 8,
                threshold_hi: 16,
                intra_nodes: 37,
                stars: 63,
                sink_spread_nm: 480_000,
                fanout_hist: [2, 1, 1, 1],
                latency_ps: 123.5,
                skew_ps: 2.25,
                buffers: 41,
                ntsvs: 12,
                trunk_wirelength_nm: 99_000,
                switched_cap_ff: 18.75,
            }],
        };
        let jsonl = snap.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + 2 counters + 1 gauge + 1 histogram + 1 sweep
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let v = parse(line).expect("every line parses");
            assert!(v.get("record").is_some(), "self-describing record");
        }
        let counter = parse(lines[1]).expect("parses");
        assert_eq!(counter.get("name").and_then(Json::as_str), Some("a\"b\\c"));
        assert_eq!(counter.get("value").and_then(Json::as_u64), Some(3));
        let hist = parse(lines[4]).expect("parses");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        // Only the occupied bucket is exported.
        assert_eq!(
            hist.get("counts").and_then(Json::as_array).map(Vec::len),
            Some(1)
        );
        let sweep = parse(lines[5]).expect("parses");
        assert_eq!(sweep.get("design").and_then(Json::as_str), Some("c1_jpeg"));
        assert_eq!(
            sweep.get("schema_version").and_then(Json::as_u64),
            Some(u64::from(SWEEP_SCHEMA_VERSION))
        );
        assert_eq!(sweep.get("stars").and_then(Json::as_u64), Some(63));
        assert_eq!(
            sweep.get("sink_spread_nm").and_then(Json::as_u64),
            Some(480_000)
        );
        let hist: Vec<u64> = sweep
            .get("fanout_hist")
            .and_then(Json::as_array)
            .expect("fanout_hist is an array")
            .iter()
            .map(|v| v.as_u64().expect("hist counts are integers"))
            .collect();
        assert_eq!(hist, vec![2, 1, 1, 1]);
        assert_eq!(
            sweep.get("switched_cap_ff").and_then(Json::as_f64),
            Some(18.75)
        );
        // Accessors agree with the export.
        assert_eq!(snap.counter("plain"), Some(0));
        assert_eq!(snap.gauge("depth"), Some(-4));
        assert!(snap.histogram("job.wall_s").is_some());
        assert_eq!(snap.counter("missing"), None);
    }
}
