//! Zero-dependency observability for the dscts pipeline and service.
//!
//! The flow is a multi-stage optimization pipeline (route → DP insertion
//! → refinement → corner sign-off) whose cost structure was previously
//! visible only as coarse per-stage wall clocks, and the job service
//! exposed little more than `wall_s` per job. This crate supplies the
//! missing layer as three small pieces:
//!
//! - **Spans** — [`Span::enter`] wall-clocks a named site and records
//!   the duration into a latency histogram (`span.<site>`) when it
//!   drops. Spans nest naturally (each is an independent RAII value)
//!   and are thread-safe.
//! - **Metrics registry** — [`MetricsRegistry`] holds named
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket log-spaced latency
//!   [`Histogram`]s. Handles are cheap `Arc`-backed clones that can be
//!   resolved once and hammered from hot loops without touching the
//!   registry lock again.
//! - **Structured export** — [`Telemetry::snapshot`] freezes everything
//!   into a [`TelemetrySnapshot`], serialized to JSON-lines by a
//!   hand-rolled writer ([`TelemetrySnapshot::to_jsonl`]) and readable
//!   back by the hand-rolled parser in [`parse_json`] (the build is
//!   offline, so both ends are dependency-free). Sweep-outcome
//!   [`SweepRecord`]s — design features plus the metrics a mode class
//!   produced — ride along as training data for future learned DSE.
//!
//! # Installation model
//!
//! Exactly one process-global collector can be live at a time.
//! [`install`] publishes an `Arc<Telemetry>` and returns a
//! [`CollectorGuard`]; dropping the guard uninstalls it. Installation
//! is *generational*: a guard only uninstalls the collector it
//! installed, so replacing a live collector simply orphans the older
//! guard (its drop becomes a no-op). This mirrors the fault-injection
//! registry's scoping discipline without its blocking semantics —
//! telemetry is passive, so last-writer-wins is safe.
//!
//! # Cost when disabled
//!
//! Every entry point ([`active`], [`Span::enter`], [`count`],
//! [`observe`], [`gauge_set`]) starts with one relaxed atomic load and
//! returns immediately when no collector is installed: no allocation,
//! no lock, no `Instant::now()`. Hot loops that cannot afford even the
//! `Option<Arc>` dance pre-resolve an `Option<Counter>` at construction
//! time and branch on `None`. The bench crate's counting-allocator
//! harness pins the no-collector sizing hot loop at zero extra heap
//! allocations.
//!
//! # Example
//!
//! ```
//! use dscts_telemetry as telemetry;
//! use std::sync::Arc;
//!
//! let collector = Arc::new(telemetry::Telemetry::new());
//! let guard = telemetry::install(collector.clone());
//! {
//!     let _span = telemetry::Span::enter("work");
//!     telemetry::count("work.items", 3);
//! }
//! drop(guard); // uninstalled: later spans are free no-ops
//!
//! let snap = collector.snapshot();
//! assert_eq!(snap.counter("work.items"), Some(3));
//! let jsonl = snap.to_jsonl();
//! for line in jsonl.lines() {
//!     telemetry::parse_json(line).expect("every exported line is valid JSON");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod json;
mod metrics;

pub use export::{HistogramSnapshot, SweepRecord, TelemetrySnapshot, SWEEP_SCHEMA_VERSION};
pub use json::{parse as parse_json, Json};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// An in-process telemetry collector: a metrics registry plus the
/// sweep-outcome event log.
///
/// Collectors are inert until [`install`]ed; multiple can exist (e.g.
/// one per test) but only the installed one receives events.
#[derive(Debug, Default)]
pub struct Telemetry {
    metrics: MetricsRegistry,
    sweeps: Mutex<Vec<SweepRecord>>,
}

impl Telemetry {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Get-or-create the named counter (cheap clonable handle).
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// Get-or-create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.metrics.gauge(name)
    }

    /// Get-or-create the named latency histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.metrics.histogram(name)
    }

    /// Record one duration observation into the named histogram.
    pub fn record_duration(&self, name: &str, seconds: f64) {
        self.metrics.histogram(name).record(seconds);
    }

    /// Append one sweep-outcome training record.
    pub fn record_sweep(&self, record: SweepRecord) {
        self.sweeps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }

    /// Number of sweep-outcome records collected so far.
    pub fn sweep_count(&self) -> usize {
        self.sweeps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Freeze the current state into an exportable snapshot.
    ///
    /// Concurrent writers may still be recording; the snapshot is a
    /// consistent-enough point-in-time view (each metric is read
    /// atomically, the sweep log under its lock).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.metrics.snapshot();
        snap.sweeps = self
            .sweeps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        snap
    }
}

/// The installed collector slot. Generation numbers make guard drops
/// idempotent and replacement-safe: a guard only clears the collector
/// *it* installed.
struct Slot {
    generation: u64,
    collector: Option<Arc<Telemetry>>,
}

/// Fast-path switch: `true` iff a collector is currently installed.
/// Checked with a relaxed load before any other telemetry work.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Slot> {
    static SLOT: OnceLock<Mutex<Slot>> = OnceLock::new();
    SLOT.get_or_init(|| {
        Mutex::new(Slot {
            generation: 0,
            collector: None,
        })
    })
}

/// Install `collector` as the process-global collector.
///
/// Returns a [`CollectorGuard`] that uninstalls it on drop. Installing
/// over a live collector replaces it (the older guard's drop becomes a
/// no-op).
pub fn install(collector: Arc<Telemetry>) -> CollectorGuard {
    let mut s = slot().lock().unwrap_or_else(PoisonError::into_inner);
    s.generation += 1;
    s.collector = Some(collector);
    ENABLED.store(true, Ordering::Release);
    CollectorGuard {
        generation: s.generation,
    }
}

/// RAII handle for an installed collector; dropping it uninstalls the
/// collector it installed (and only that one — see [`install`]).
#[derive(Debug)]
#[must_use = "dropping the guard immediately uninstalls the collector"]
pub struct CollectorGuard {
    generation: u64,
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        let mut s = slot().lock().unwrap_or_else(PoisonError::into_inner);
        if s.generation == self.generation {
            s.collector = None;
            ENABLED.store(false, Ordering::Release);
        }
    }
}

/// The currently installed collector, if any.
///
/// One relaxed atomic load when disabled — the hot-path contract every
/// instrumentation site relies on.
#[inline]
pub fn active() -> Option<Arc<Telemetry>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .collector
        .clone()
}

/// `true` iff a collector is installed (same fast path as [`active`]).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A timed region: records `elapsed` into the `span.<site>` histogram
/// of the installed collector when dropped. Free no-op when disabled.
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    tel: Arc<Telemetry>,
    site: &'static str,
    start: Instant,
}

impl Span {
    /// Enter the named site. The site becomes the histogram suffix, so
    /// keep it low-cardinality (`"route"`, `"dp"`, `"service.job"`).
    #[inline]
    pub fn enter(site: &'static str) -> Span {
        match active() {
            Some(tel) => Span(Some(SpanInner {
                tel,
                site,
                start: Instant::now(),
            })),
            None => Span(None),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let seconds = inner.start.elapsed().as_secs_f64();
            // Allocating the key is fine here: a collector is live, so
            // the zero-allocation contract does not apply.
            inner
                .tel
                .record_duration(&format!("span.{}", inner.site), seconds);
        }
    }
}

/// Add `n` to the named counter of the installed collector, if any.
#[inline]
pub fn count(name: &str, n: u64) {
    if let Some(t) = active() {
        t.counter(name).add(n);
    }
}

/// Set the named gauge of the installed collector, if any.
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    if let Some(t) = active() {
        t.gauge(name).set(value);
    }
}

/// Record a duration into the named histogram of the installed
/// collector, if any.
#[inline]
pub fn observe(name: &str, seconds: f64) {
    if let Some(t) = active() {
        t.record_duration(name, seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector slot is process-global, and the test harness runs
    // tests in parallel; everything touching install/uninstall lives in
    // this one test so nothing races.
    #[test]
    fn install_uninstall_and_generation_semantics() {
        assert!(!enabled());
        assert!(active().is_none());

        let a = Arc::new(Telemetry::new());
        let guard_a = install(a.clone());
        assert!(enabled());
        count("x", 2);
        {
            let _span = Span::enter("s");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(a.snapshot().counter("x"), Some(2));
        let span_hist = a.histogram("span.s");
        assert_eq!(span_hist.count(), 1);
        assert!(span_hist.sum_seconds() > 0.0);

        // Replace while live: the old guard's drop must not clear the
        // new collector.
        let b = Arc::new(Telemetry::new());
        let guard_b = install(b.clone());
        drop(guard_a);
        assert!(
            enabled(),
            "stale guard must not uninstall the new collector"
        );
        count("x", 1);
        assert_eq!(b.snapshot().counter("x"), Some(1));
        assert_eq!(a.snapshot().counter("x"), Some(2), "old collector frozen");

        drop(guard_b);
        assert!(!enabled());
        assert!(active().is_none());
        count("x", 100); // free no-op
        assert_eq!(b.snapshot().counter("x"), Some(1));

        // Sweep records flow through the snapshot.
        let c = Arc::new(Telemetry::new());
        let guard_c = install(c.clone());
        if let Some(t) = active() {
            t.record_sweep(SweepRecord {
                schema_version: SWEEP_SCHEMA_VERSION,
                design: "unit".to_owned(),
                sinks: 10,
                distinct_fanouts: 3,
                mode_class: 0,
                threshold_lo: 1,
                threshold_hi: 4,
                intra_nodes: 2,
                stars: 4,
                sink_spread_nm: 2_000,
                fanout_hist: [3, 0, 0, 0],
                latency_ps: 100.0,
                skew_ps: 1.5,
                buffers: 7,
                ntsvs: 3,
                trunk_wirelength_nm: 1234,
                switched_cap_ff: 9.5,
            });
        }
        assert_eq!(c.sweep_count(), 1);
        let snap = c.snapshot();
        assert_eq!(snap.sweeps.len(), 1);
        drop(guard_c);
    }
}
