//! Hand-rolled metrics primitives: counters, gauges, and fixed-bucket
//! log-spaced latency histograms.
//!
//! All handles are cheap `Arc`-backed clones over atomics, so hot loops
//! resolve a handle once (one registry-lock acquisition) and then
//! record lock-free. Registry keys live in `BTreeMap`s so snapshots and
//! exports enumerate in a deterministic order.

use crate::export::{HistogramSnapshot, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (unregistered; normally obtained from
    /// [`MetricsRegistry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins instantaneous value (queue depth, peak RSS).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the value to `value` if it is larger (peak tracking).
    pub fn max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-spaced upper bucket bounds in seconds: four buckets per decade
/// from 1 µs up to ~5.6 ks, one trailing overflow bucket. Wide enough
/// for per-move sizing trials and multi-second chaos jobs alike.
const BUCKETS_PER_DECADE: f64 = 4.0;
const BUCKET_COUNT: usize = 40;

fn latency_bounds() -> Vec<f64> {
    (0..BUCKET_COUNT)
        .map(|i| 1e-6 * 10f64.powf(i as f64 / BUCKETS_PER_DECADE))
        .collect()
}

#[derive(Debug)]
struct HistoInner {
    /// Upper bounds (inclusive) per bucket, strictly increasing.
    bounds: Vec<f64>,
    /// One count per bound plus a trailing overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Sum of observations in integer nanoseconds (atomic-addable;
    /// overflows after ~584 years of recorded time).
    sum_ns: AtomicU64,
}

/// A fixed-bucket latency histogram with lock-free recording and
/// bucket-interpolated quantiles.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistoInner>);

impl Default for Histogram {
    fn default() -> Self {
        let bounds = latency_bounds();
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistoInner {
            bounds,
            counts,
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, empty histogram (unregistered; normally obtained from
    /// [`MetricsRegistry::histogram`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation, in seconds. Negative and non-finite
    /// values are clamped to zero (they land in the first bucket).
    #[inline]
    pub fn record(&self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let idx = self.0.bounds.partition_point(|&b| b < s);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.total.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add((s * 1e9) as u64, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated by linear interpolation
    /// within the bucket that crosses the target rank. Returns 0 for an
    /// empty histogram; observations in the overflow bucket report the
    /// last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0.0;
        for (i, c) in self.0.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed) as f64;
            if c > 0.0 && cum + c >= target {
                let lo = if i == 0 { 0.0 } else { self.0.bounds[i - 1] };
                let hi = match self.0.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: report its lower edge rather
                    // than invent an upper bound.
                    None => return lo,
                };
                let frac = ((target - cum) / c).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
            cum += c;
        }
        // invariant: total > 0 means some bucket crossed the target.
        self.0.bounds[self.0.bounds.len() - 1]
    }

    /// Freeze into an exportable snapshot under the given name.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.0.counts.len());
        for (i, c) in self.0.counts.iter().enumerate() {
            let le = self.0.bounds.get(i).copied().unwrap_or(f64::MAX);
            buckets.push((le, c.load(Ordering::Relaxed)));
        }
        HistogramSnapshot {
            name: name.to_owned(),
            count: self.count(),
            sum_s: self.sum_seconds(),
            p50_s: self.quantile(0.50),
            p95_s: self.quantile(0.95),
            p99_s: self.quantile(0.99),
            buckets,
        }
    }
}

/// Named counters, gauges and histograms with get-or-create semantics
/// and deterministic (sorted-name) snapshot order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::new();
        map.insert(name.to_owned(), c.clone());
        c
    }

    /// Get-or-create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Gauge::new();
        map.insert(name.to_owned(), g.clone());
        g
    }

    /// Get-or-create the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Histogram::new();
        map.insert(name.to_owned(), h.clone());
        h
    }

    /// Freeze every metric into a snapshot (sweep log left empty; the
    /// owning [`Telemetry`](crate::Telemetry) fills it in).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| v.snapshot(k))
            .collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
            sweeps: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a");
        c.incr();
        c.add(4);
        // Same name resolves the same underlying cell.
        assert_eq!(reg.counter("a").get(), 5);

        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        g.max(3); // below current: no change
        assert_eq!(reg.gauge("depth").get(), 5);
        g.max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 100 observations spread uniformly inside one decade.
        for i in 0..100 {
            h.record(1e-3 * (1.0 + i as f64 / 100.0));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Bucket interpolation is coarse, but order statistics and the
        // bucketing envelope must hold.
        assert!(p50 > 0.5e-3 && p50 < 3.5e-3, "p50 = {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!((h.sum_seconds() - 0.1495).abs() < 2e-3);
    }

    #[test]
    fn histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.record(-1.0); // clamped to zero, first bucket
        h.record(f64::NAN); // clamped
        h.record(1e9); // overflow bucket
        assert_eq!(h.count(), 3);
        let snap = h.snapshot("h");
        let recorded: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(recorded, 3);
        // Overflow quantile reports the last finite bound, not infinity.
        assert!(h.quantile(1.0).is_finite());
    }

    #[test]
    fn snapshot_orders_names_deterministically() {
        let reg = MetricsRegistry::new();
        reg.counter("zebra").incr();
        reg.counter("alpha").incr();
        reg.histogram("m").record(0.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zebra"]);
        assert_eq!(snap.histograms[0].name, "m");
    }
}
