//! Offline shim of the `rayon` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, dependency-free data-parallelism layer with the same
//! call shapes as rayon: `slice.par_iter().map(f).collect::<Vec<_>>()`,
//! `range.into_par_iter()`, [`join`], and [`current_num_threads`].
//!
//! Semantics the rest of the workspace relies on:
//!
//! - **Order-preserving**: `collect` returns results in the input order,
//!   exactly as sequential iteration would, regardless of thread count.
//!   Combined with pure per-item closures this makes every parallel stage
//!   bit-identical to its sequential counterpart.
//! - **`RAYON_NUM_THREADS`**: read on every parallel call (not once at
//!   pool construction), so tests can flip between single- and
//!   multi-threaded execution within one process.
//! - **No work stealing**: items are split into one contiguous chunk per
//!   thread via `std::thread::scope`. For the coarse-grained work in this
//!   workspace (per-cluster DME runs, per-level DP nodes, per-config
//!   pipeline runs) chunking loses little to stealing and keeps the shim
//!   trivially correct.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Number of worker threads a parallel call will use: `RAYON_NUM_THREADS`
/// when set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Order-preserving parallel map over `0..len`, chunked across threads.
fn map_indexed<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            // Re-raise worker panics with their original payload so
            // panic-message assertions see through parallel sections.
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Conversion of a parallel computation's ordered results into a
/// collection (shim of `rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T> {
    /// Builds the collection from results in input order.
    fn from_ordered_results(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_results(v: Vec<T>) -> Self {
        v
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_results(v: Vec<Result<T, E>>) -> Self {
        v.into_iter().collect()
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel for-each (no results).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        map_indexed(self.items.len(), |i| f(&self.items[i]));
    }
}

/// The mapped stage of a slice parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        C::from_ordered_results(map_indexed(self.items.len(), |i| (self.f)(&self.items[i])))
    }
}

/// Parallel mutable for-each over a slice, chunked across threads. Each
/// thread owns a disjoint contiguous sub-slice (via `chunks_mut`), so no
/// synchronisation is needed and `forbid(unsafe_code)` holds.
fn for_each_mut<T: Send, F: Fn(&mut T) + Sync>(items: &mut [T], f: F) {
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|part| {
                let f = &f;
                s.spawn(move || part.iter_mut().for_each(f))
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// A mutably borrowing parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Parallel mutable for-each (no results). Items are visited exactly
    /// once; mutations land in place, so the post-state is identical to a
    /// sequential `iter_mut().for_each(f)` for pure per-item closures.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        for_each_mut(self.items, f);
    }
}

/// `par_iter_mut()` on mutably borrowed collections (shim of
/// `rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type yielded by mutable reference.
    type Item: Send + 'a;
    /// Mutably borrows the collection as a parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// An owning parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

/// The mapped stage of a range parallel iterator.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        let lo = self.range.start;
        C::from_ordered_results(map_indexed(self.range.len(), |i| (self.f)(lo + i)))
    }
}

/// `par_iter()` on borrowed collections (shim of
/// `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// Borrows the collection as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `into_par_iter()` on owned ranges (shim of
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// The traits to import for `par_iter` / `into_par_iter` call syntax.
pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i32> = (0..1000).collect();
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_collect() {
        let squares: Vec<usize> = (3..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn result_collect_short_circuits_to_first_error_in_order() {
        let v: Vec<usize> = (0..100).collect();
        let r: Result<Vec<usize>, usize> = v
            .par_iter()
            .map(|&x| if x >= 40 { Err(x) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err(40));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn thread_count_env_is_respected_per_call() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        assert_eq!(current_num_threads(), 1);
        let single: Vec<i32> = (0..64usize).into_par_iter().map(|i| i as i32).collect();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        assert_eq!(current_num_threads(), 4);
        let multi: Vec<i32> = (0..64usize).into_par_iter().map(|i| i as i32).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(single, multi);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_iter_mut_touches_every_item_once() {
        let mut v: Vec<usize> = (0..997).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..998).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_on_empty_and_single() {
        let mut empty: Vec<i32> = Vec::new();
        empty.par_iter_mut().for_each(|x| *x = 1);
        assert!(empty.is_empty());
        let mut one = vec![41];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one, vec![42]);
    }
}
