//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same call shapes:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`), the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert!` family.
//!
//! Differences from the real crate, acceptable for this workspace's
//! invariant-style properties:
//!
//! - **No shrinking.** A failing case reports its inputs (via the panic
//!   message carrying the case number and seed) but is not minimised.
//! - **Fixed deterministic seeding.** Each test function derives its case
//!   inputs from a fixed seed plus the case index, so failures reproduce
//!   exactly across runs and machines.
//! - **Default 64 cases** (`ProptestConfig::default()`); override with
//!   `ProptestConfig::with_cases(n)` exactly as upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies (re-exported for macro use).
    pub type TestRng = SmallRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and the per-test case loop.

    use super::strategy::{Strategy, TestRng};
    use rand::SeedableRng;

    /// Run configuration (shim of `proptest::test_runner::Config`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Drives `body` over `config.cases` deterministically seeded samples
    /// of `strategy`. Called by the [`crate::proptest!`] macro; not public
    /// API in the real crate, but harmless to expose here.
    pub fn run<S: Strategy>(
        test_name: &str,
        config: &ProptestConfig,
        strategy: &S,
        body: impl Fn(S::Value),
    ) {
        // Stable seed per test name so failures reproduce across runs.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        for case in 0..config.cases {
            let mut rng =
                TestRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let value = strategy.sample(&mut rng);
            body(value);
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ( $($strat,)+ );
            $crate::test_runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                &__strategy,
                |( $($arg,)+ )| $body,
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` import set.

    pub use crate::collection;
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias (`prop::collection::vec` call syntax).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn point() -> impl Strategy<Value = (i64, i64)> {
        (-100i64..100, -100i64..100).prop_map(|(x, y)| (x, y))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in -50i64..50, b in 0usize..10, f in 0.0f64..=1.0) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b < 10);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn mapped_tuples_work(p in point()) {
            prop_assert!(p.0 >= -100 && p.0 < 100);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0i64..5, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_accepted(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let strat = (0i64..1_000_000,);
        let record = || {
            let seen = std::cell::RefCell::new(Vec::new());
            crate::test_runner::run("det", &ProptestConfig::with_cases(10), &strat, |(v,)| {
                seen.borrow_mut().push(v);
            });
            seen.into_inner()
        };
        let (a, b) = (record(), record());
        assert_eq!(a.len(), 10);
        assert_eq!(a, b);
    }
}
