//! Offline shim of the `criterion` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small wall-clock benchmarking harness with the same call
//! shapes: [`Criterion::bench_function`], benchmark groups with
//! `sample_size` / `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (benches are built
//! with `harness = false`, exactly as with real criterion).
//!
//! Statistics are deliberately simple: each benchmark runs one warm-up
//! iteration plus `sample_size` timed samples and reports min / median /
//! max. Every result is also appended to
//! `target/criterion-shim/<bench>.json` so baselines can be recorded and
//! diffed without parsing stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// One benchmark result (exposed for the JSON dump).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Per-sample wall-clock times, sorted ascending (seconds).
    pub times_s: Vec<f64>,
}

impl Sample {
    fn median_s(&self) -> f64 {
        let n = self.times_s.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            self.times_s[n / 2]
        } else {
            0.5 * (self.times_s[n / 2 - 1] + self.times_s[n / 2])
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// The benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sink: Vec<Sample>,
    bench_name: String,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_name = std::env::args()
            .next()
            .and_then(|p| {
                PathBuf::from(p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "bench".to_owned());
        Criterion {
            sink: Vec::new(),
            bench_name,
        }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample = run_bench(id, DEFAULT_SAMPLE_SIZE, &mut f);
        self.sink.push(sample);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Writes all recorded samples as JSON under `target/criterion-shim/`.
    /// Called by [`criterion_main!`]; a no-op when nothing ran.
    pub fn finalize(&self) {
        if self.sink.is_empty() {
            return;
        }
        let mut json = String::from("[\n");
        for (i, s) in self.sink.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            let times: Vec<String> = s.times_s.iter().map(|t| format!("{t:.9}")).collect();
            json.push_str(&format!(
                "  {{\"id\": {:?}, \"median_s\": {:.9}, \"times_s\": [{}]}}",
                s.id,
                s.median_s(),
                times.join(", ")
            ));
        }
        json.push_str("\n]\n");
        let dir = PathBuf::from("target").join("criterion-shim");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.json", self.bench_name));
            if std::fs::write(&path, json).is_ok() {
                println!("\nresults written to {}", path.display());
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks a function over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let sample = run_bench(&full, self.sample_size, &mut |b| f(b, input));
        self.criterion.sink.push(sample);
        self
    }

    /// Ends the group (statistics were already reported per bench).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter (shim of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Builds a parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    times_s: Vec<f64>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        self.times_s.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times_s.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn run_bench(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) -> Sample {
    let mut b = Bencher {
        samples,
        times_s: Vec::new(),
    };
    let wall = Instant::now();
    f(&mut b);
    let total = wall.elapsed();
    b.times_s.sort_by(|x, y| x.total_cmp(y));
    let sample = Sample {
        id: id.to_owned(),
        times_s: b.times_s.clone(),
    };
    if sample.times_s.is_empty() {
        println!("{id:<50} (no iterations, {:?})", total);
    } else {
        println!(
            "{id:<50} median {:>12}  min {:>12}  max {:>12}  ({} samples)",
            fmt_time(sample.median_s()),
            fmt_time(sample.times_s[0]),
            fmt_time(*sample.times_s.last().expect("non-empty")),
            sample.times_s.len(),
        );
    }
    sample
}

/// Declares a benchmark group function (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` (shim of `criterion_main!`; benches use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

/// Prevents the optimiser from eliding the benchmarked computation
/// (re-export shim; forwards to `std::hint::black_box`).
pub fn criterion_black_box<T>(x: T) -> T {
    black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.sink.len(), 1);
        assert_eq!(c.sink[0].times_s.len(), DEFAULT_SAMPLE_SIZE);
        assert_eq!(c.sink[0].id, "noop");
    }

    #[test]
    fn group_honours_sample_size_and_id_format() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", "C4"), &41, |b, &x| b.iter(|| x + 1));
        g.finish();
        assert_eq!(c.sink[0].id, "grp/f/C4");
        assert_eq!(c.sink[0].times_s.len(), 3);
    }

    #[test]
    fn median_of_even_and_odd() {
        let s = Sample {
            id: "x".into(),
            times_s: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(s.median_s(), 2.0);
        let e = Sample {
            id: "x".into(),
            times_s: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(e.median_s(), 2.5);
    }
}
