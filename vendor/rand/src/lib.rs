//! Offline shim of the `rand` 0.9 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the handful of
//! items the code consumes: [`rngs::SmallRng`], [`SeedableRng`], and
//! [`Rng::random_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `rand` crate, which is fine here: every consumer
//! treats the RNG as an arbitrary deterministic source and asserts
//! range/invariant properties, never exact draws. Determinism per seed is
//! the only contract, and it holds across platforms and thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniform value from a range, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Maps 53 random bits onto `[0, 1)`.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut impl RngCore) -> f32 {
        let r: f64 = (self.start as f64..self.end as f64).sample(rng);
        r as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (shim for `rand::rngs::SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut x: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0i64..1_000_000),
                b.random_range(0i64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.random_range(0usize..=3);
            assert!(u <= 3);
            let f = rng.random_range(1e-9f64..1.0);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<i64> = (0..10).map(|_| a.random_range(0i64..1 << 40)).collect();
        let vb: Vec<i64> = (0..10).map(|_| b.random_range(0i64..1 << 40)).collect();
        assert_ne!(va, vb);
    }
}
